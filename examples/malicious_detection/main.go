// Malicious peer detection: FedGuard's audit scores as a client-quality
// signal.
//
// The paper's conclusion notes that FedGuard's mechanism "could further
// be used in many other applications including detection of defective
// sensors ... or enabling a better sampling of quality candidates". This
// example demonstrates that: it runs a federation with 40% label-flipping
// attackers, accumulates each client's exclusion rate over the run, ranks
// the clients by it, and compares the ranking against the ground-truth
// malicious set (precision / recall of flagging clients excluded in the
// majority of their appearances).
//
//	go run ./examples/malicious_detection
package main

import (
	"fmt"
	"log"
	"sort"

	"fedguard/internal/defense"
	"fedguard/internal/experiment"
	"fedguard/internal/fl"
)

func main() {
	setup := experiment.MustSetup(experiment.PresetQuick)
	setup.Rounds = 10

	att, err := experiment.NewAttack("label-flip", setup.Seed)
	if err != nil {
		log.Fatal(err)
	}
	guard := defense.NewFedGuard(setup.Arch, setup.CVAE)
	guard.Samples = setup.Samples

	train, test, _ := setup.Data()
	cfg := fl.FederationConfig{
		NumClients: setup.NumClients, PerRound: setup.PerRound, Rounds: setup.Rounds,
		Alpha: setup.Alpha, ServerLR: 1,
		MaliciousFraction: 0.4, Attack: att,
		Client: fl.ClientConfig{
			Arch: setup.Arch, Train: setup.Train,
			CVAE: setup.CVAE, CVAETrain: setup.CVAETrain, NumClasses: 10,
		},
		TestSubset: setup.TestSubset,
		Seed:       setup.Seed,
	}
	fed, err := fl.NewFederation(train, test, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("federation: %d clients, %d malicious label flippers, %d rounds\n\n",
		cfg.NumClients, len(fed.MaliciousIDs), cfg.Rounds)
	h, err := fed.Run(guard, func(rec fl.RoundRecord) {
		fmt.Printf("round %2d  acc %.3f  excluded %d/%d\n",
			rec.Round, rec.TestAccuracy, int(rec.Report["fedguard_excluded"]), len(rec.Sampled))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal accuracy: %.3f\n\n", h.FinalAccuracy())

	excluded, seen := guard.DetectionStats()
	type row struct {
		id        int
		rate      float64
		seen      int
		malicious bool
	}
	var rows []row
	for id, n := range seen {
		rows = append(rows, row{
			id:        id,
			rate:      float64(excluded[id]) / float64(n),
			seen:      n,
			malicious: fed.MaliciousIDs[id],
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].rate > rows[j].rate })

	fmt.Println("client exclusion ranking (truth in last column):")
	fmt.Println("  id  excl-rate  rounds  actually-malicious")
	var tp, fp, fn int
	for _, r := range rows {
		flagged := r.rate > 0.5
		mark := ""
		if flagged {
			mark = "  <- flagged"
		}
		fmt.Printf("  %2d  %8.0f%%  %6d  %17v%s\n", r.id, 100*r.rate, r.seen, r.malicious, mark)
		switch {
		case flagged && r.malicious:
			tp++
		case flagged && !r.malicious:
			fp++
		case !flagged && r.malicious:
			fn++
		}
	}
	precision := safeDiv(tp, tp+fp)
	recall := safeDiv(tp, tp+fn)
	fmt.Printf("\nflagging clients excluded in >50%% of appearances: precision %.2f, recall %.2f\n",
		precision, recall)
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
