// Attack comparison: the paper's Table IV in miniature.
//
// Runs every defense strategy (FedAvg, GeoMed, Krum, Spectral, FedGuard)
// against a chosen attack scenario and prints the resulting accuracy
// table plus sparkline convergence charts — the experiment that shows
// who actually defends and who silently fails.
//
//	go run ./examples/attack_comparison                  # same-value attack
//	go run ./examples/attack_comparison sign-flip-50     # any scenario ID
package main

import (
	"fmt"
	"log"
	"os"

	"fedguard/internal/experiment"
)

func main() {
	scenarioID := "same-value-50"
	if len(os.Args) > 1 {
		scenarioID = os.Args[1]
	}
	scenario, err := experiment.ScenarioByID(scenarioID)
	if err != nil {
		log.Fatal(err)
	}
	setup := experiment.MustSetup(experiment.PresetQuick)

	fmt.Printf("scenario: %s — %s\n\n", scenario.ID, scenario.Description)

	var results []*experiment.Result
	for _, name := range experiment.StrategyNames() {
		fmt.Printf("running %-9s ...", name)
		res, err := experiment.Run(setup, scenario, name, experiment.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" final %5.1f%%\n", 100*res.History.FinalAccuracy())
		results = append(results, res)
	}

	fmt.Println("\naccuracy over rounds (▁ = 10%, █ = 100%):")
	experiment.WriteASCIIChart(os.Stdout, results)

	fmt.Println("\nTable IV cell (mean ± std over the final rounds):")
	if err := experiment.WriteTableIV(os.Stdout, results); err != nil {
		log.Fatal(err)
	}
}
