// Networked federation: the paper's distributed deployment, in one
// process.
//
// Launches a federation server on a loopback TCP socket and one goroutine
// per client, each speaking the binary wire protocol — the same code
// paths cmd/fednode uses across machines. Every client regenerates its
// SynthDigits shard locally and derives its random stream from the shared
// experiment seed, so this run is bit-identical to the in-process
// simulator. The per-round traffic printed below is *measured* on the
// sockets, decoder payloads and frame overhead included (Table V's
// communication columns, observed rather than computed).
//
//	go run ./examples/networked
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"fedguard/internal/dataset"
	"fedguard/internal/defense"
	"fedguard/internal/experiment"
	"fedguard/internal/fednet"
	"fedguard/internal/fl"
	"fedguard/internal/rng"
)

func main() {
	setup := experiment.MustSetup(experiment.PresetQuick)
	setup.Rounds = 4
	sc, err := experiment.ScenarioByID("same-value-50")
	if err != nil {
		log.Fatal(err)
	}

	guard := defense.NewFedGuard(setup.Arch, setup.CVAE)
	guard.Samples = setup.Samples

	cfg := fednet.Config{
		Experiment: fl.FederationConfig{
			NumClients:        setup.NumClients,
			PerRound:          setup.PerRound,
			Rounds:            setup.Rounds,
			Alpha:             setup.Alpha,
			ServerLR:          1,
			MaliciousFraction: sc.MaliciousFraction,
			Client: fl.ClientConfig{
				Arch: setup.Arch, Train: setup.Train,
				CVAE: setup.CVAE, CVAETrain: setup.CVAETrain, NumClasses: 10,
			},
			TestSubset: setup.TestSubset,
			Seed:       setup.Seed,
		},
		AttackName: sc.Attack,
		ArchName:   setup.ArchName,
		DataSeed:   rng.DeriveSeed(setup.Seed, "traindata", 0),
		TrainSize:  setup.TrainSize,
	}
	test := dataset.Generate(setup.TestSize, dataset.DefaultGenOptions(),
		rng.New(rng.DeriveSeed(setup.Seed, "testdata", 0)))

	srv, err := fednet.NewServer(cfg, test, guard)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	fmt.Printf("server on %s; launching %d clients (%d malicious, %s attack)\n\n",
		ln.Addr(), cfg.Experiment.NumClients,
		int(cfg.Experiment.MaliciousFraction*float64(cfg.Experiment.NumClients)+0.5),
		cfg.AttackName)

	var wg sync.WaitGroup
	for id := 0; id < cfg.Experiment.NumClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := fednet.RunClient(ln.Addr().String(), id); err != nil {
				log.Printf("client %d: %v", id, err)
			}
		}(id)
	}

	h, err := srv.Run(ln, func(rec fl.RoundRecord) {
		fmt.Printf("round %d  acc=%.3f  wire: up %.2f MB, down %.2f MB  (%.1fs)\n",
			rec.Round, rec.TestAccuracy,
			float64(rec.UploadBytes)/(1<<20), float64(rec.DownloadBytes)/(1<<20),
			rec.Seconds)
	})
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("\nfinal accuracy %.3f with 50%% same-value attackers — over real sockets.\n",
		h.FinalAccuracy())
}
