// Server learning rate: the paper's Fig. 5 stability study in miniature.
//
// At 40% label-flipping attackers FedGuard occasionally fails for a round
// (a malicious majority slips through the sampled subset) and the global
// model takes a visible accuracy hit. A server-side learning rate below 1
// damps such hits at the cost of slower convergence. This example runs
// FedGuard with server LR 1.0 and 0.3 and prints both trajectories.
//
//	go run ./examples/server_lr
package main

import (
	"fmt"
	"log"
	"os"

	"fedguard/internal/experiment"
)

func main() {
	setup := experiment.MustSetup(experiment.PresetQuick)
	setup.Rounds = 12 // a longer run makes the damping visible

	fmt.Println("FedGuard vs 40% label-flipping attackers, server LR 1.0 vs 0.3")
	fmt.Println()

	results, err := experiment.Fig5(setup, []float64{1.0, 0.3}, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\naccuracy per round:")
	fmt.Printf("%-6s", "round")
	for _, r := range results {
		fmt.Printf("  %-16s", r.Strategy)
	}
	fmt.Println()
	for round := 0; round < setup.Rounds; round++ {
		fmt.Printf("%-6d", round+1)
		for _, r := range results {
			fmt.Printf("  %-16.4f", r.History.Rounds[round].TestAccuracy)
		}
		fmt.Println()
	}

	fmt.Println()
	for _, r := range results {
		mean, std := r.History.LastNStats(setup.Rounds / 2)
		fmt.Printf("%s: last-half mean %.4f ± %.4f (variance %.6f)\n",
			r.Strategy, mean, std, std*std)
	}
	fmt.Println("\nThe lr-0.3 run trades convergence speed for lower variance — the")
	fmt.Println("paper's conclusion (Fig. 5): a damped server step bounds the damage")
	fmt.Println("of any single round in which the defense fails.")
}
