// Dynamic datasets: the paper's §VI-C future-work scenario.
//
// Clients do not own a static partition; they start with 30% of their
// data and receive a fresh batch before every participation, retraining
// their CVAE every third appearance so the uploaded decoder tracks the
// evolving local distribution. The federation still faces 30%
// label-flipping attackers, and FedGuard still has to defend — now with
// decoders trained on partial, growing data.
//
//	go run ./examples/dynamic_stream
package main

import (
	"fmt"
	"log"

	"fedguard/internal/defense"
	"fedguard/internal/experiment"
	"fedguard/internal/fl"
)

func main() {
	setup := experiment.MustSetup(experiment.PresetQuick)
	setup.Rounds = 10

	att, err := experiment.NewAttack("label-flip", setup.Seed)
	if err != nil {
		log.Fatal(err)
	}
	guard := defense.NewFedGuard(setup.Arch, setup.CVAE)
	guard.Samples = setup.Samples
	guard.UseDecoderClasses = true // §VI-B routing: partial decoders only
	// synthesize classes they have seen

	train, test, _ := setup.Data()
	cfg := fl.FederationConfig{
		NumClients: setup.NumClients, PerRound: setup.PerRound, Rounds: setup.Rounds,
		Alpha: setup.Alpha, ServerLR: 1,
		MaliciousFraction: 0.3, Attack: att,
		Client: fl.ClientConfig{
			Arch: setup.Arch, Train: setup.Train,
			CVAE: setup.CVAE, CVAETrain: setup.CVAETrain, NumClasses: 10,
		},
		Stream: &fl.StreamConfig{
			InitialFraction:  0.3,
			PerRound:         20,
			CVAERetrainEvery: 3,
		},
		TestSubset: setup.TestSubset,
		Seed:       setup.Seed,
	}
	fed, err := fl.NewFederation(train, test, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("streaming federation: clients start with 30% of their data,")
	fmt.Println("gain 20 samples per appearance, retrain CVAEs every 3rd round;")
	fmt.Println("30% of clients flip labels 5<->7 and 4<->2.")
	fmt.Println()
	h, err := fed.Run(guard, func(rec fl.RoundRecord) {
		fmt.Printf("round %2d  acc %.3f  excluded %d/%d\n",
			rec.Round, rec.TestAccuracy,
			int(rec.Report["fedguard_excluded"]), len(rec.Sampled))
	})
	if err != nil {
		log.Fatal(err)
	}
	mean, std := h.LastNStats(5)
	fmt.Printf("\nfinal %.3f, last-5 mean %.3f ± %.3f\n", h.FinalAccuracy(), mean, std)
	fmt.Println("\nEven with decoders trained on partial, shifting data, selective")
	fmt.Println("aggregation keeps the label flippers out of the global model.")
}
