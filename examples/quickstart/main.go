// Quickstart: a ten-minute tour of the FedGuard reproduction.
//
// It builds a 16-client federation over the SynthDigits dataset where
// half of the clients collude on a sign-flipping attack, then runs the
// same federation twice — once with undefended FedAvg and once with
// FedGuard — and prints the round-by-round accuracy of both, showing
// FedAvg collapse to chance while FedGuard converges.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fedguard/internal/experiment"
	"fedguard/internal/fl"
)

func main() {
	// The quick preset: 16 clients, 8 sampled per round, 8 rounds, a small
	// dense classifier, and per-client CVAEs (Dirichlet-partitioned data,
	// exactly like the paper's setup but CPU-sized).
	setup := experiment.MustSetup(experiment.PresetQuick)

	// Scenario: 50% of clients negate their model updates before upload.
	scenario, err := experiment.ScenarioByID("sign-flip-50")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("federation: %d clients, %d per round, %d rounds, 50%% sign-flipping attackers\n\n",
		setup.NumClients, setup.PerRound, setup.Rounds)

	for _, strategy := range []string{"FedAvg", "FedGuard"} {
		fmt.Printf("--- %s ---\n", strategy)
		res, err := experiment.Run(setup, scenario, strategy, experiment.RunOptions{
			OnRound: func(rec fl.RoundRecord) {
				bar := ""
				for i := 0; i < int(rec.TestAccuracy*40); i++ {
					bar += "#"
				}
				fmt.Printf("round %2d  acc %5.1f%%  %s\n", rec.Round, 100*rec.TestAccuracy, bar)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		mean, std := res.History.LastNStats(setup.LastN)
		fmt.Printf("=> final %.1f%%, last-%d mean %.1f%% ± %.1f%%\n\n",
			100*res.History.FinalAccuracy(), setup.LastN, 100*mean, 100*std)
	}

	fmt.Println("FedAvg averages the poisoned updates straight into the global model;")
	fmt.Println("FedGuard audits every update on CVAE-synthesized validation digits and")
	fmt.Println("aggregates only the ones that score at or above the round's mean accuracy.")
}
