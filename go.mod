module fedguard

go 1.22
