package fedguard

import "testing"

func TestScenariosAndStrategiesNonEmpty(t *testing.T) {
	if len(Scenarios()) == 0 {
		t.Fatal("no scenarios")
	}
	if len(Strategies()) != 5 {
		t.Fatalf("%d strategies, want the paper's 5", len(Strategies()))
	}
}

func TestRunValidatesArguments(t *testing.T) {
	if _, err := Run("bogus-preset", "no-attack", "FedAvg"); err == nil {
		t.Fatal("bogus preset accepted")
	}
	if _, err := Run(PresetQuick, "bogus-scenario", "FedAvg"); err == nil {
		t.Fatal("bogus scenario accepted")
	}
	if _, err := Run(PresetQuick, "no-attack", "bogus-strategy"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestRunQuickEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-preset federation")
	}
	res, err := Run(PresetQuick, "no-attack", "FedAvg")
	if err != nil {
		t.Fatal(err)
	}
	if res.History.FinalAccuracy() < 0.5 {
		t.Fatalf("benign FedAvg reached only %v", res.History.FinalAccuracy())
	}
	if len(res.History.FinalWeights) == 0 {
		t.Fatal("no final weights recorded")
	}
}
