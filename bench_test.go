package fedguard

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation section, plus microbenchmarks of the substrate kernels.
//
// The experiment benchmarks run complete federations at the quick preset
// (16 clients, 8 per round) with a reduced round count, and report the
// resulting accuracy statistics as custom metrics (acc_mean, acc_std,
// acc_final) alongside the usual ns/op. They are slow by nature
// (seconds per op); the Go benchmark runner keeps N=1 for them.
// EXPERIMENTS.md reports the full default-preset numbers produced by
// cmd/fedbench.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTableIV_SignFlip -benchtime=1x

import (
	"testing"

	"fedguard/internal/aggregate"
	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/experiment"
	"fedguard/internal/fl"
	"fedguard/internal/nn"
	"fedguard/internal/opt"
	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// benchSetup is the quick preset trimmed for benchmarking.
func benchSetup() experiment.Setup {
	s := experiment.MustSetup(experiment.PresetQuick)
	s.Rounds = 3
	s.LastN = 2
	return s
}

func runCell(b *testing.B, scenarioID, strategy string) {
	b.Helper()
	setup := benchSetup()
	sc, err := experiment.ScenarioByID(scenarioID)
	if err != nil {
		b.Fatal(err)
	}
	var res *experiment.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiment.Run(setup, sc, strategy, experiment.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	mean, std := res.History.LastNStats(setup.LastN)
	b.ReportMetric(mean, "acc_mean")
	b.ReportMetric(std, "acc_std")
	b.ReportMetric(res.History.FinalAccuracy(), "acc_final")
}

// --- Table IV / Fig. 4: one benchmark per attack column, sub-benchmarks
// per strategy (E1–E5 in DESIGN.md). ---------------------------------

func benchScenario(b *testing.B, scenarioID string) {
	for _, strategy := range experiment.StrategyNames() {
		b.Run(strategy, func(b *testing.B) { runCell(b, scenarioID, strategy) })
	}
}

func BenchmarkTableIV_NoAttack(b *testing.B)      { benchScenario(b, "no-attack") }
func BenchmarkTableIV_AdditiveNoise(b *testing.B) { benchScenario(b, "additive-noise-50") }
func BenchmarkTableIV_LabelFlip30(b *testing.B)   { benchScenario(b, "label-flip-30") }
func BenchmarkTableIV_SignFlip(b *testing.B)      { benchScenario(b, "sign-flip-50") }
func BenchmarkTableIV_SameValue(b *testing.B)     { benchScenario(b, "same-value-50") }

// --- Fig. 5: server learning rate under 40% label flipping (E6). -----

func BenchmarkFig5_ServerLR(b *testing.B) {
	for _, lr := range []float64{1.0, 0.3} {
		lr := lr
		b.Run(lrName(lr), func(b *testing.B) {
			setup := benchSetup()
			sc, err := experiment.ScenarioByID("label-flip-40")
			if err != nil {
				b.Fatal(err)
			}
			var res *experiment.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = experiment.Run(setup, sc, "FedGuard", experiment.RunOptions{ServerLR: lr})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			mean, std := res.History.LastNStats(setup.LastN)
			b.ReportMetric(mean, "acc_mean")
			b.ReportMetric(std*std, "acc_var")
		})
	}
}

func lrName(lr float64) string {
	if lr == 1.0 {
		return "lr-1.0"
	}
	return "lr-0.3"
}

// --- Table V: per-round communication and time overhead (E7). --------

func BenchmarkTableV_Overhead(b *testing.B) {
	for _, strategy := range experiment.StrategyNames() {
		b.Run(strategy, func(b *testing.B) {
			setup := benchSetup()
			setup.Rounds = 2
			sc, err := experiment.ScenarioByID("no-attack")
			if err != nil {
				b.Fatal(err)
			}
			var res *experiment.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = experiment.Run(setup, sc, strategy, experiment.RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			up, down := res.History.MeanBytes()
			b.ReportMetric(float64(up)/(1<<20), "upMB/round")
			b.ReportMetric(float64(down)/(1<<20), "downMB/round")
			b.ReportMetric(res.History.MeanSeconds(), "s/round")
		})
	}
}

// --- Ablations (A1–A3 in DESIGN.md). ----------------------------------

func BenchmarkAblation_SampleCount(b *testing.B) {
	for _, t := range []int{20, 100, 400} {
		t := t
		b.Run(sampleName(t), func(b *testing.B) {
			setup := benchSetup()
			setup.Samples = t
			sc, _ := experiment.ScenarioByID("sign-flip-50")
			var res *experiment.Result
			var err error
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = experiment.Run(setup, sc, "FedGuard", experiment.RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(res.History.FinalAccuracy(), "acc_final")
			b.ReportMetric(res.History.MeanSeconds(), "s/round")
		})
	}
}

func sampleName(t int) string {
	switch t {
	case 20:
		return "t-20"
	case 100:
		return "t-100"
	default:
		return "t-400"
	}
}

func BenchmarkAblation_InnerAggregator(b *testing.B) {
	for _, strategy := range []string{"FedGuard", "FedGuard-GeoMed", "FedGuard-Median"} {
		b.Run(strategy, func(b *testing.B) { runCell(b, "sign-flip-50", strategy) })
	}
}

func BenchmarkAblation_Dirichlet(b *testing.B) {
	for _, name := range []string{"alpha-100", "alpha-10", "alpha-0.5"} {
		alpha := map[string]float64{"alpha-100": 100, "alpha-10": 10, "alpha-0.5": 0.5}[name]
		b.Run(name, func(b *testing.B) {
			setup := benchSetup()
			setup.Alpha = alpha
			sc, _ := experiment.ScenarioByID("label-flip-30")
			var res *experiment.Result
			var err error
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = experiment.Run(setup, sc, "FedGuard", experiment.RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(res.History.FinalAccuracy(), "acc_final")
		})
	}
}

// --- Substrate microbenchmarks. ----------------------------------------

func BenchmarkMatMul128(b *testing.B) {
	r := rng.New(1)
	x := tensor.New(128, 128)
	y := tensor.New(128, 128)
	dst := tensor.New(128, 128)
	r.FillNormal(x.Data, 0, 1)
	r.FillNormal(y.Data, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, x, y)
	}
	flops := 2.0 * 128 * 128 * 128
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkConvForward(b *testing.B) {
	r := rng.New(2)
	conv := nn.NewConv2D(1, 32, 5, 5, r)
	x := tensor.New(8, 1, 28, 28)
	r.FillNormal(x.Data, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
	}
}

func BenchmarkConvBackward(b *testing.B) {
	r := rng.New(3)
	conv := nn.NewConv2D(1, 32, 5, 5, r)
	x := tensor.New(8, 1, 28, 28)
	r.FillNormal(x.Data, 0, 1)
	y := conv.Forward(x, true)
	g := tensor.New(y.Shape()...)
	r.FillNormal(g.Data, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Backward(g)
	}
}

func BenchmarkClassifierTrainEpoch(b *testing.B) {
	r := rng.New(4)
	train := dataset.Generate(256, dataset.DefaultGenOptions(), r)
	model := classifier.Small()(r)
	cfg := classifier.TrainConfig{Epochs: 1, BatchSize: 32, LR: 0.05, Momentum: 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classifier.Train(model, train, dataset.Range(train.Len()), cfg, r)
	}
	b.ReportMetric(float64(train.Len())*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

func BenchmarkCVAEStep(b *testing.B) {
	r := rng.New(5)
	cfg := cvae.SmallConfig()
	model := cvae.New(cfg, r)
	train := dataset.Generate(32, dataset.DefaultGenOptions(), r)
	x, labels := train.FlatBatch(dataset.Range(32))
	optim := opt.NewAdam(model.Params(), 1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Step(x, labels, optim, r)
	}
}

func BenchmarkDecoderGenerate(b *testing.B) {
	r := rng.New(6)
	cfg := cvae.SmallConfig()
	dec := cvae.DecoderFromCVAE(cvae.New(cfg, r))
	z := tensor.New(100, cfg.Latent)
	r.FillNormal(z.Data, 0, 1)
	labels := make([]int, 100)
	for i := range labels {
		labels[i] = i % 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Generate(z, labels)
	}
}

func benchUpdates(n, dim int) []fl.Update {
	r := rng.New(7)
	ups := make([]fl.Update, n)
	for i := range ups {
		w := make([]float32, dim)
		r.FillNormal(w, 0, 0.1)
		ups[i] = fl.Update{ClientID: i, NumSamples: 100, Weights: w}
	}
	return ups
}

// modelDim is the real model size (classifier.Small's parameter count),
// so the aggregation benchmarks measure the exact vector length a
// default-preset round pushes through the strategy math.
func modelDim() int {
	return classifier.Small()(rng.New(9)).NumParams()
}

func BenchmarkAggregateFedAvg(b *testing.B) {
	ups := benchUpdates(50, modelDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregate.WeightedMean(ups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKrumScores is the Krum hot loop alone: the m×m pairwise
// squared-distance matrix plus the per-update neighbour sums, at the
// paper's m=50 and the real model dimension.
func BenchmarkKrumScores(b *testing.B) {
	ups := benchUpdates(50, modelDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregate.KrumScores(ups, 24); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeoMed(b *testing.B) {
	ups := benchUpdates(50, modelDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregate.GeometricMedian(ups); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoordinateMedian(b *testing.B) {
	ups := benchUpdates(50, modelDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregate.CoordinateMedian(ups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerApply measures the server's ψ ← ψ + lr·(agg − ψ) update
// at the real model dimension — the per-round cost both servers pay after
// every aggregation.
func BenchmarkServerApply(b *testing.B) {
	dim := modelDim()
	r := rng.New(10)
	global := make([]float32, dim)
	agg := make([]float32, dim)
	next := make([]float32, dim)
	r.FillNormal(global, 0, 0.1)
	r.FillNormal(agg, 0, 0.1)
	b.ReportAllocs()
	b.SetBytes(int64(dim) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr := float32(0.3)
		for j := range next {
			next[j] = global[j] + lr*(agg[j]-global[j])
		}
	}
	_ = next
}

func BenchmarkSynthDigitRender(b *testing.B) {
	r := rng.New(8)
	img := make([]float32, dataset.ImageH*dataset.ImageW)
	opts := dataset.DefaultGenOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dataset.RenderDigit(img, i%10, opts, r)
	}
}
