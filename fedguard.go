// Package fedguard is a from-scratch Go reproduction of
//
//	Chelli et al., "FedGuard: Selective Parameter Aggregation for
//	Poisoning Attack Mitigation in Federated Learning", IEEE CLUSTER 2023.
//
// The package is a thin facade over the internal packages that implement
// the full system: a float32 neural-network substrate
// (internal/tensor, internal/nn, internal/opt, internal/loss), the
// SynthDigits procedural dataset with Dirichlet federated partitioning
// (internal/dataset), the paper's classifier and CVAE architectures
// (internal/classifier, internal/cvae), the federation simulator
// (internal/fl), the four poisoning attacks (internal/attack), the
// baseline aggregation strategies (internal/aggregate), FedGuard and
// Spectral themselves (internal/defense), and the experiment harness
// that regenerates every table and figure (internal/experiment).
//
// Most applications only need this facade:
//
//	res, err := fedguard.Run(fedguard.PresetQuick, "sign-flip-50", "FedGuard")
//	fmt.Println(res.History.FinalAccuracy())
//
// For lower-level control (custom attacks, strategies, architectures)
// import the internal packages directly — the examples/ directory shows
// both styles.
package fedguard

import (
	"fedguard/internal/experiment"
	"fedguard/internal/fl"
)

// Preset selects an experiment scale. See the constants below.
type Preset = experiment.Preset

// Experiment scales: PresetQuick finishes in seconds-to-minutes on a
// laptop, PresetDefault is the scale EXPERIMENTS.md reports, PresetPaper
// is the full 100-client configuration of the paper's §IV-A.
const (
	PresetQuick   = experiment.PresetQuick
	PresetDefault = experiment.PresetDefault
	PresetPaper   = experiment.PresetPaper
)

// Scenario is one attack configuration (ID, attack, malicious fraction).
type Scenario = experiment.Scenario

// Result couples a finished run with its identity and statistics.
type Result = experiment.Result

// History is the per-round record of a federation run.
type History = fl.History

// Scenarios lists the paper's evaluation scenarios.
func Scenarios() []Scenario { return experiment.Scenarios() }

// Strategies lists the paper's comparison strategies
// (FedAvg, GeoMed, Krum, Spectral, FedGuard).
func Strategies() []string { return experiment.StrategyNames() }

// Run executes one scenario under one strategy at the given scale and
// returns the full result. It is deterministic: the same arguments always
// produce the same history.
func Run(preset Preset, scenarioID, strategy string) (*Result, error) {
	setup, err := experiment.NewSetup(preset)
	if err != nil {
		return nil, err
	}
	sc, err := experiment.ScenarioByID(scenarioID)
	if err != nil {
		return nil, err
	}
	return experiment.Run(setup, sc, strategy, experiment.RunOptions{})
}
